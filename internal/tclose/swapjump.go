package tclose

import (
	"sort"

	"repro/internal/emd"
	"repro/internal/micro"
	"repro/internal/par"
)

// This file implements the jump engine behind Algorithm 2's headline
// configuration (k = 2, one ordered confidential attribute): a drop-in
// replacement for the nearest-first candidate stream whose partitions are
// bit-identical, but whose cost adapts to the refinement regime per
// cluster.
//
// The sequential reference pops every remaining candidate in ascending
// (distance, row) order and evaluates a closed-form two-record deviation
// (emd.Space.TwoRecordAbsDev) per pop. Two regimes matter:
//
//   - Loose t: a cluster reaches t after a handful of pops, many of them
//     accepted. The lazy heap is essentially optimal — one distance fill,
//     one heapify, a few O(log n) pops.
//   - Tight t: almost every cluster exhausts every candidate without
//     reaching t, and almost every pop is a rejection. The cost is
//     producing the full (distance, row) order — previously one radix
//     sort of the whole remainder per cluster, the dominant term of the
//     full-size runs.
//
// The engine therefore runs each cluster in two phases. Phase 1 is exactly
// the sequential loop on a lazy position heap. If a cluster's pops exceed
// jumpAfterPops with a large remainder outstanding — the stream path's own
// drain signal — the cluster is provably in the rejection-dominated regime,
// and phase 2 takes over: instead of popping rejections one by one, it
// jumps straight to the next candidate that will be *accepted*. That works
// because for a two-record cluster the accept/reject decision depends only
// on the candidate's confidential bin and the current state (u0, u1,
// curNum), not on its distance — the distance order only decides which
// improving candidate is reached first. Phase 2 computes the improving bin
// set as O(1) many intervals (binary searches over a piecewise-convex
// closed form, see below) and answers "nearest candidate within these bin
// intervals" with a segment tree over the candidates bucketed by bin,
// built once per graduating cluster.
//
// # Why the improving set is a union of intervals
//
// For a fixed partner bin w, g_w(b) = TwoRecordAbsDev(w, b) is convex on
// each side of b = w. Within a regime where the relative order of b, w and
// the space's half-mass crossing hc is fixed, the closed form is
// α·sqcPref(b−1) + β·b + const with α ∈ {0, 4}, so its forward difference
// is one of
//
//	4·qcPref(b) − n   (b below both w and hc)
//	 n                (b between hc and w)
//	−n                (b between w and hc)
//	4·qcPref(b) − 3n  (b above both w and hc)
//
// each nondecreasing in b because qcPref is nondecreasing; and across the
// hc cut the difference steps upward (2·qcPref(hc) > n by definition), so
// each side of w is one convex piece. A convex piece dips below a threshold
// on at most one interval, located by binary searches on the difference
// sign and the threshold. Only the b = w point breaks convexity (the
// one-bin cluster bump); it is tested separately — collapsing onto the
// partner's bin is a real candidate the sequential path evaluates — while
// the current pair's own bins never qualify (g at the current partner pair
// equals curNum itself, never strictly below).
//
// # Why skipping is exact
//
// The sequential loop consumes every popped candidate: once rejected, a
// candidate is never revisited, even though the cluster state keeps
// changing. Phase 2 leaves skipped candidates alive and re-queries them
// under later states, so equivalence needs more than "they were rejected
// then": it rests on a monotonicity lemma — a bin that does not improve on
// the current pair cannot improve on any pair reached by accepted swaps.
// One step suffices by induction: if min(g_u0(b), g_u1(b)) >= dev(u0, u1)
// and a swap to y is accepted (new pair P' with dev(P') < dev(u0, u1)),
// then min over w' in P' of g_w'(b) >= dev(P'). Hence a candidate the
// sequential loop rejected and consumed can never be selected by a later
// phase-2 query — it stays outside every later improving set — and the
// first candidate each query returns is exactly the sequential loop's next
// accepted pop. The lemma is pinned directly by TestJumpSkipMonotonicity
// (randomized one-step closure over the exact integer deviations), and the
// end-to-end equivalence by the naive-reference property tests (every
// phase floor forced), the worker-sweep and duplicate-table tests, and the
// golden conformance fixtures.
//
// The distance fill is the engine's only fan-out (chunk-parallel under the
// engine worker budget); every chunk writes disjoint slots of the same
// values, so results are worker-count-invariant.

// jumpAfterPops is the number of phase-1 pops after which a cluster with
// more than jumpAfterPops candidates still outstanding graduates to the
// interval-jump phase. It mirrors the stream path's drain threshold: by
// then the cluster has proven it is burning pops on rejections, and the
// O(avail) bucket build plus O(log) accepted-swap queries beat continuing
// to pop one rejection at a time. Both phases produce identical clusters,
// so the floor is purely a performance knob — a variable so tests can
// force either phase.
var jumpAfterPops = 128

// jumpDirectStreak is the number of consecutive drained clusters after
// which the next cluster skips phase 1 outright — no heapify, initial
// picks straight off the segment tree. In the sustained-drain regime of
// tight t every cluster pays the bucket build anyway, so the phase-1 heap
// is pure overhead; a single cluster that reaches t resets the streak.
// Purely a performance knob (identical clusters either way), variable for
// tests.
var jumpDirectStreak = 4

// swapJump holds the per-run scratch of the jump engine, reused across
// clusters: one distance slot, liveness bit, heap slot and tree slot per
// table record.
type swapJump struct {
	mat *micro.Matrix
	sp  *emd.Space
	// rank is the surviving candidate set in ascending (confidential
	// value, row) order — bucket layout: candidates of one bin are one
	// contiguous position run. The partition loop filters it in lockstep
	// with avail.
	rank []int

	dist  []float64 // per-position distance to the cluster seed
	alive []bool    // per-position liveness within the current cluster
	heap  []int32   // phase-1 lazy position heap in (distance, row) order

	// drainStreak counts consecutive clusters that drained (exhausted
	// their improving candidates without reaching t); at jumpDirectStreak
	// the next cluster starts directly in phase 2.
	drainStreak int

	// Phase-2 structure (valid only when built).
	built    bool
	runStart []int32 // bucket u = rank positions [runStart[u], runStart[u+1])
	runBin   []int   // bin id of bucket u, ascending
	head     []int32 // per-bucket position of the (distance, row) minimum, -1 when empty

	// tree is a flat segment tree over the buckets: tree[treeBase+u] is
	// head[u], inner nodes the (distance, row)-smaller child. -1 is empty.
	tree     []int32
	treeBase int
}

// newSwapJump builds the engine over the problem's substrate.
func (p *problem) newSwapJump() *swapJump {
	return &swapJump{
		mat:  p.mat,
		sp:   p.spaces[0],
		rank: append([]int(nil), p.ConfOrder()...),
	}
}

// filter drops the extracted cluster's rows from the candidate ranking,
// mirroring the partition loop's avail bookkeeping.
func (j *swapJump) filter(drop []int, scratch []bool) {
	j.rank = micro.FilterRows(j.rank, drop, scratch)
}

// less orders candidate positions by (distance, row) — the exact emission
// order of the stream it replaces.
func (j *swapJump) less(a, b int32) bool {
	da, db := j.dist[a], j.dist[b]
	if da != db {
		return da < db
	}
	return j.rank[a] < j.rank[b]
}

// load prepares the per-cluster distances (parallel chunks under the
// matrix's scan gating, the same knob as every other row scan) and
// liveness; the phase-1 heap and phase-2 structure are built separately by
// whichever phase the cluster starts in.
func (j *swapJump) load(seed []float64) {
	n := len(j.rank)
	if cap(j.dist) < n {
		j.dist = make([]float64, n)
		j.alive = make([]bool, n)
		j.heap = make([]int32, n)
	}
	j.dist = j.dist[:n]
	j.alive = j.alive[:n]
	dist, alive := j.dist, j.alive
	mat, rank := j.mat, j.rank
	par.Chunks(n, mat.ScanWorkers(n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dist[i] = mat.RowDist2(rank[i], seed)
			alive[i] = true
		}
	})
	j.built = false
}

// heapInit fills and heapifies the phase-1 position heap.
func (j *swapJump) heapInit() {
	n := len(j.rank)
	j.heap = j.heap[:n]
	for i := range j.heap {
		j.heap[i] = int32(i)
	}
	for i := n/2 - 1; i >= 0; i-- {
		j.siftDown(i)
	}
}

func (j *swapJump) siftDown(i int) {
	h := j.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		next := l
		if r := l + 1; r < n && j.less(h[r], h[l]) {
			next = r
		}
		if !j.less(h[next], h[i]) {
			return
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
}

// heapPop removes and returns the (distance, row)-smallest remaining
// position, marking it dead; ok is false when the heap is exhausted.
func (j *swapJump) heapPop() (int32, bool) {
	if len(j.heap) == 0 {
		return -1, false
	}
	top := j.heap[0]
	last := len(j.heap) - 1
	j.heap[0] = j.heap[last]
	j.heap = j.heap[:last]
	j.siftDown(0)
	j.alive[top] = false
	return top, true
}

// ensureStructure builds the bin buckets, per-bucket minima and segment
// tree from the current liveness — the phase-2 mode for clusters whose
// refinement drains.
func (j *swapJump) ensureStructure() {
	if j.built {
		return
	}
	n := len(j.rank)
	j.runStart = j.runStart[:0]
	j.runBin = j.runBin[:0]
	last := -1
	for i := 0; i < n; i++ {
		if b := j.sp.Bin(j.rank[i]); b != last {
			j.runStart = append(j.runStart, int32(i))
			j.runBin = append(j.runBin, b)
			last = b
		}
	}
	j.runStart = append(j.runStart, int32(n))
	u := len(j.runBin)
	if cap(j.head) < u {
		j.head = make([]int32, u)
	}
	j.head = j.head[:u]
	for b := 0; b < u; b++ {
		j.head[b] = j.scanRun(b)
	}
	base := 1
	for base < u {
		base *= 2
	}
	j.treeBase = base
	if cap(j.tree) < 2*base {
		j.tree = make([]int32, 2*base)
	}
	j.tree = j.tree[:2*base]
	for i := 0; i < base; i++ {
		if i < u {
			j.tree[base+i] = j.head[i]
		} else {
			j.tree[base+i] = -1
		}
	}
	for i := base - 1; i >= 1; i-- {
		j.tree[i] = j.better(j.tree[2*i], j.tree[2*i+1])
	}
	j.built = true
}

func (j *swapJump) better(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 || j.less(a, b) {
		return a
	}
	return b
}

// scanRun returns the (distance, row)-minimal live position of bucket u,
// or -1 when the bucket is exhausted.
func (j *swapJump) scanRun(u int) int32 {
	best := int32(-1)
	for i := j.runStart[u]; i < j.runStart[u+1]; i++ {
		if j.alive[i] && (best < 0 || j.less(i, best)) {
			best = i
		}
	}
	return best
}

// pop marks position i dead and refreshes its bucket's head and tree path
// (phase 2 only).
func (j *swapJump) pop(i int32) {
	j.alive[i] = false
	u := sort.Search(len(j.runBin), func(x int) bool { return j.runStart[x+1] > i })
	j.head[u] = j.scanRun(u)
	t := j.treeBase + u
	j.tree[t] = j.head[u]
	for t >>= 1; t >= 1; t >>= 1 {
		j.tree[t] = j.better(j.tree[2*t], j.tree[2*t+1])
	}
}

// query returns the minimal live position among buckets [ulo, uhi).
func (j *swapJump) query(ulo, uhi int) int32 {
	best := int32(-1)
	lo, hi := ulo+j.treeBase, uhi+j.treeBase
	for lo < hi {
		if lo&1 == 1 {
			best = j.better(best, j.tree[lo])
			lo++
		}
		if hi&1 == 1 {
			hi--
			best = j.better(best, j.tree[hi])
		}
		lo >>= 1
		hi >>= 1
	}
	return best
}

// improvingPiece returns the bin interval of {b in [lo, hi) : g_w(b) < thr}
// for one convex piece of g_w (a side of b = w), empty as (0, 0).
func (j *swapJump) improvingPiece(w, lo, hi int, thr int64) (int, int) {
	if lo >= hi {
		return 0, 0
	}
	g := func(b int) int64 { return j.sp.TwoRecordAbsDev(w, b) }
	// Convexity: the forward difference is nondecreasing, so the first
	// non-negative difference marks the minimum.
	bmin := lo + sort.Search(hi-1-lo, func(i int) bool {
		return g(lo+i+1)-g(lo+i) >= 0
	})
	if g(bmin) >= thr {
		return 0, 0
	}
	// g is nonincreasing on [lo, bmin] and nondecreasing on [bmin, hi).
	left := lo + sort.Search(bmin-lo, func(i int) bool { return g(lo+i) < thr })
	right := bmin + 1 + sort.Search(hi-bmin-1, func(i int) bool { return g(bmin+1+i) >= thr })
	return left, right
}

// nextImproving returns the (distance, row)-minimal live candidate whose
// bin strictly improves on curNum for the cluster state (u0, u1), or -1
// when no such candidate remains — at which point the sequential stream
// would reject every remaining pop and terminate with the same cluster.
func (j *swapJump) nextImproving(u0, u1 int, curNum int64) int32 {
	m := j.sp.Bins()
	best := int32(-1)
	seen := -1
	minBucket := func(blo, bhi int) {
		ulo := sort.SearchInts(j.runBin, blo)
		uhi := sort.SearchInts(j.runBin, bhi)
		if ulo < uhi {
			best = j.better(best, j.query(ulo, uhi))
		}
	}
	for _, w := range [2]int{u1, u0} {
		if w == seen {
			continue // identical partner bins: one union suffices
		}
		seen = w
		for _, piece := range [2][2]int{{0, w}, {w + 1, m}} {
			if blo, bhi := j.improvingPiece(w, piece[0], piece[1], curNum); blo < bhi {
				minBucket(blo, bhi)
			}
		}
		// The b = w point sits between the two convex pieces (the one-bin
		// cluster bump) and the sequential path does evaluate it: a
		// candidate in the partner's own bin collapses the cluster onto a
		// single bin, which can improve when that bin carries enough data
		// set mass (duplicate-heavy tables).
		if j.sp.TwoRecordAbsDev(w, w) < curNum {
			minBucket(w, w+1)
		}
	}
	return best
}

// generateClusterJump is the k = 2 single-ordered-attribute generateCluster
// over the jump engine; see the file comment. It must be called only when
// len(avail) >= 2k (the caller's small-remainder path handles the rest) and
// the candidate ranking j.rank matches avail exactly.
func (p *problem) generateClusterJump(j *swapJump, seed []float64) (cluster []int, swaps int) {
	j.load(seed)
	sp := j.sp
	// In the sustained-drain regime, skip the phase-1 heap outright: the
	// bucket structure is getting built anyway, and it answers the initial
	// picks too.
	direct := j.drainStreak >= jumpDirectStreak
	var c0, c1 int32
	if direct {
		j.ensureStructure()
		c0 = j.tree[1]
		j.pop(c0)
		c1 = j.tree[1]
		j.pop(c1)
	} else {
		j.heapInit()
		c0, _ = j.heapPop()
		c1, _ = j.heapPop()
	}
	// Initial cluster: the two (distance, row)-smallest candidates, exactly
	// the stream's first two pops.
	cluster = []int{j.rank[c0], j.rank[c1]}
	h := sp.HistOf(cluster)
	cur := h.EMD()
	u0, u1 := sp.Bin(cluster[0]), sp.Bin(cluster[1])
	curNum := h.AbsDev()
	// accept applies the sequential fast path's decision block verbatim:
	// evicting cluster[0] keeps u1, evicting cluster[1] keeps u0; ties
	// prefer the lower index. It reports whether the candidate was taken.
	accept := func(y int32) bool {
		yb := sp.Bin(j.rank[y])
		bestIdx, bestNum := -1, curNum
		if yb != u0 {
			if d := sp.TwoRecordAbsDev(u1, yb); d < bestNum {
				bestIdx, bestNum = 0, d
			}
		}
		if u1 != u0 && yb != u1 {
			if d := sp.TwoRecordAbsDev(u0, yb); d < bestNum {
				bestIdx, bestNum = 1, d
			}
		}
		if bestIdx < 0 {
			return false
		}
		rec := j.rank[y]
		h.Swap(cluster[bestIdx], rec)
		cluster[bestIdx] = rec
		if bestIdx == 0 {
			u0 = yb
		} else {
			u1 = yb
		}
		curNum = bestNum
		cur = h.EMD()
		swaps++
		return true
	}
	// drained records how the cluster ended: improving candidates exhausted
	// while still above t (the tight-t signature) versus reaching t. The
	// streak of drained clusters controls the direct phase-2 entry above.
	drained := false
	defer func() {
		if drained {
			j.drainStreak++
		} else {
			j.drainStreak = 0
		}
	}()
	// Phase 1: the sequential loop on the lazy heap, until the cluster
	// either finishes or proves it is draining.
	if !direct {
		pops := 0
		for cur > p.t {
			if pops >= jumpAfterPops && len(j.heap) > jumpAfterPops {
				break // graduating to phase 2
			}
			y, ok := j.heapPop()
			if !ok {
				drained = cur > p.t
				return cluster, swaps
			}
			pops++
			accept(y)
		}
		if cur <= p.t {
			return cluster, swaps
		}
	}
	// Phase 2: jump from accepted swap to accepted swap. Candidates in
	// between have non-improving bins — the sequential loop would pop and
	// reject each with no state change.
	j.ensureStructure()
	for cur > p.t {
		y := j.nextImproving(u0, u1, curNum)
		if y < 0 {
			drained = true
			break
		}
		// By construction nextImproving only returns candidates accept takes.
		accept(y)
		j.pop(y)
	}
	return cluster, swaps
}
