package tclose

import (
	"math/rand"
	"testing"

	"repro/internal/emd"
)

// TestJumpSkipMonotonicity pins the lemma the jump engine's phase-2
// skipping rests on (see the swapjump.go correctness comment): if bin b
// does not strictly improve on the current two-record pair, it does not
// improve on any pair reached by an accepted swap. One step closes the
// induction, so the test enumerates single accepted swaps exhaustively
// over randomized small spaces: for every pair (u0, u1), every accepted
// candidate y (per the engine's exact decision block) and every
// non-improving bin b, the bin must remain non-improving on the successor
// pair. Exact integer deviations throughout — a single violation would
// mean phase 2 could select a candidate the sequential stream had already
// consumed as rejected, silently diverging the partitions.
func TestJumpSkipMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive lemma closure: slow property test")
	}
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(60)
		vals := make([]float64, n)
		switch trial % 3 {
		case 0:
			for i := range vals {
				vals[i] = float64(rng.Intn(4)) // few bins, heavy ties
			}
		case 1:
			for i := range vals {
				vals[i] = rng.Float64() // all distinct
			}
		default:
			for i := range vals {
				vals[i] = float64(rng.Intn(n/2 + 1))
			}
		}
		s, err := emd.NewSpace(vals)
		if err != nil {
			t.Fatal(err)
		}
		m := s.Bins()
		g := func(a, b int) int64 { return s.TwoRecordAbsDev(a, b) }
		for u0 := 0; u0 < m; u0++ {
			for u1 := 0; u1 < m; u1++ {
				cur := g(u0, u1)
				for yb := 0; yb < m; yb++ {
					// The engine's decision block: evicting index 0 keeps
					// u1, evicting index 1 keeps u0, ties prefer index 0.
					bestIdx, bestNum := -1, cur
					if yb != u0 {
						if d := g(u1, yb); d < bestNum {
							bestIdx, bestNum = 0, d
						}
					}
					if u1 != u0 && yb != u1 {
						if d := g(u0, yb); d < bestNum {
							bestIdx, bestNum = 1, d
						}
					}
					if bestIdx < 0 {
						continue // rejected candidate: no successor state
					}
					n0, n1 := u0, u1
					if bestIdx == 0 {
						n0 = yb
					} else {
						n1 = yb
					}
					for b := 0; b < m; b++ {
						before := g(u1, b)
						if v := g(u0, b); v < before {
							before = v
						}
						if before < cur {
							continue // b was improving before the swap
						}
						after := g(n1, b)
						if v := g(n0, b); v < after {
							after = v
						}
						if after < bestNum {
							t.Fatalf("monotonicity violated: m=%d pair=(%d,%d) dev=%d, swap y=%d -> pair=(%d,%d) dev=%d, bin %d: before=%d after=%d",
								m, u0, u1, cur, yb, n0, n1, bestNum, b, before, after)
						}
					}
				}
			}
		}
	}
}
