package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	schema, err := repro.NewSchema(
		repro.Attribute{Name: "age", Role: repro.QuasiIdentifier, Kind: repro.Numeric},
		repro.Attribute{Name: "zip", Role: repro.QuasiIdentifier, Kind: repro.Numeric},
		repro.Attribute{Name: "salary", Role: repro.Confidential, Kind: repro.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := repro.NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := tbl.AppendNumericRow(float64(20+i), float64(43000+i%5), float64(1000*i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := repro.Anonymize(tbl, repro.Config{
		Algorithm: repro.TClosenessFirst, K: 3, T: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxEMD > 0.25+1e-9 {
		t.Errorf("MaxEMD = %v", res.MaxEMD)
	}
	k, err := repro.KAnonymity(res.Anonymized)
	if err != nil {
		t.Fatal(err)
	}
	if k < 3 {
		t.Errorf("k-anonymity = %d", k)
	}
	tc, err := repro.TCloseness(res.Anonymized)
	if err != nil {
		t.Fatal(err)
	}
	if tc > 0.25+1e-9 {
		t.Errorf("t-closeness = %v", tc)
	}
	rep, err := repro.Assess(res.Anonymized)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KAnonymity != k {
		t.Errorf("Assess k = %d, KAnonymity = %d", rep.KAnonymity, k)
	}
	sse, err := repro.NormalizedSSE(tbl, res.Anonymized)
	if err != nil {
		t.Fatal(err)
	}
	if sse != res.SSE {
		t.Errorf("facade SSE %v != result SSE %v", sse, res.SSE)
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	tbl := repro.CensusMCD()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Errorf("round trip lost records: %d vs %d", back.Len(), tbl.Len())
	}
}

func TestFacadeParseAlgorithm(t *testing.T) {
	alg, err := repro.ParseAlgorithm("tclose-first")
	if err != nil || alg != repro.TClosenessFirst {
		t.Errorf("ParseAlgorithm = %v, %v", alg, err)
	}
}

func TestFacadeSyntheticConstructors(t *testing.T) {
	if repro.CensusMCD().Len() != 1080 {
		t.Error("CensusMCD size")
	}
	if repro.CensusHCD().Len() != 1080 {
		t.Error("CensusHCD size")
	}
	if repro.PatientDischarge(123, 1).Len() != 123 {
		t.Error("PatientDischarge size")
	}
}

func TestFacadeReadCSVError(t *testing.T) {
	if _, err := repro.ReadCSV(strings.NewReader("garbage")); err == nil {
		t.Error("garbage CSV should fail")
	}
}

func TestFacadeNewBaselinesAndRisk(t *testing.T) {
	tbl := repro.CensusMCD()
	res, err := repro.Anonymize(tbl, repro.Config{
		Algorithm: repro.SABREBaseline, K: 2, T: 0.13, SkipAssessment: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate, err := repro.LinkageRisk(tbl, res.Anonymized)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0 || rate > 0.5 {
		t.Errorf("linkage risk = %v, expected within (0, 1/k]", rate)
	}
	if alg, err := repro.ParseAlgorithm("incognito"); err != nil || alg != repro.IncognitoBaseline {
		t.Errorf("ParseAlgorithm(incognito) = %v, %v", alg, err)
	}
}

func TestFacadeAnatomyAndNTCloseness(t *testing.T) {
	tbl := repro.CensusMCD()
	res, err := repro.Anonymize(tbl, repro.Config{
		Algorithm: repro.TClosenessFirst, K: 5, T: 0.15, SkipAssessment: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	anat, err := repro.AnatomyRelease(tbl, res.Clusters, 3)
	if err != nil {
		t.Fatal(err)
	}
	// QIs unchanged in the anatomy release.
	if anat.Value(0, 0) != tbl.Value(0, 0) {
		t.Error("anatomy release changed a quasi-identifier")
	}
	nt, err := repro.NTCloseness(tbl, res.Clusters, 200)
	if err != nil {
		t.Fatal(err)
	}
	if nt < 0 || nt > 1 {
		t.Errorf("NTCloseness = %v out of range", nt)
	}
}

func TestFacadeCorrelationDistortion(t *testing.T) {
	tbl := repro.CensusHCD()
	res, err := repro.Anonymize(tbl, repro.Config{
		Algorithm: repro.TClosenessFirst, K: 5, T: 0.13, SkipAssessment: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The centroid release of conf-spread clusters distorts the strong
	// QI↔FICA correlation noticeably; the identity release not at all.
	d0, err := repro.CorrelationDistortion(tbl, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if d0 != 0 {
		t.Errorf("identity distortion = %v", d0)
	}
	d, err := repro.CorrelationDistortion(tbl, res.Anonymized)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("release distortion = %v, want > 0", d)
	}
}
