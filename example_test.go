package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleAnonymize shows the basic anonymization flow on a small in-memory
// table.
func ExampleAnonymize() {
	schema, err := repro.NewSchema(
		repro.Attribute{Name: "age", Role: repro.QuasiIdentifier, Kind: repro.Numeric},
		repro.Attribute{Name: "salary", Role: repro.Confidential, Kind: repro.Numeric},
	)
	if err != nil {
		log.Fatal(err)
	}
	table, err := repro.NewTable(schema)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := table.AppendNumericRow(float64(20+5*i), float64(20000+3000*i)); err != nil {
			log.Fatal(err)
		}
	}
	res, err := repro.Anonymize(table, repro.Config{
		Algorithm: repro.TClosenessFirst, K: 3, T: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clusters:", len(res.Clusters))
	fmt.Println("k-anonymity:", res.Privacy.KAnonymity)
	fmt.Println("t-close:", res.MaxEMD <= 0.3)
	// Output:
	// clusters: 4
	// k-anonymity: 3
	// t-close: true
}

// ExampleTCloseness verifies a released table independently of how it was
// produced.
func ExampleTCloseness() {
	table := repro.CensusMCD()
	res, err := repro.Anonymize(table, repro.Config{
		Algorithm: repro.Merge, K: 5, T: 0.2, SkipAssessment: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	level, err := repro.TCloseness(res.Anonymized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("within requested t:", level <= 0.2)
	// Output:
	// within requested t: true
}

// ExampleParseAlgorithm maps command-line names onto algorithms.
func ExampleParseAlgorithm() {
	alg, err := repro.ParseAlgorithm("tclose-first")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(alg)
	// Output:
	// alg3-tclose-first
}
